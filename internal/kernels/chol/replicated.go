package chol

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/fixed"
	"repro/internal/tcdm"
)

// ReplicatedPlan runs whole small decompositions on every core: the MIMO
// use-case schedules thousands of independent 4x4 Cholesky factorizations
// (one per subcarrier). Rounds controls how many barrier-delimited phases
// run; PerRound how many decompositions each core performs between
// barriers. The paper's "4x256" configuration is Rounds=4, PerRound=1;
// "16x256" with a single barrier is Rounds=1, PerRound=16.
type ReplicatedPlan struct {
	N        int
	Cores    []int
	Rounds   int
	PerRound int
	// Pipelined runs decompositions in software-pipelined pairs so the
	// divide/sqrt latency of one matrix hides behind the other's MAC
	// streams (requires PerRound even).
	Pipelined bool

	m      *engine.Machine
	gBase  []arch.Addr // [core*Rounds*PerRound + rep] sequential inputs
	blocks []tcdm.TileBlock
}

// NewReplicatedPlan allocates inputs and folded outputs for coreCount
// cores each decomposing Rounds*PerRound matrices of size n.
func NewReplicatedPlan(m *engine.Machine, n, coreCount, rounds, perRound int) (*ReplicatedPlan, error) {
	switch {
	case n < 2:
		return nil, fmt.Errorf("chol: replicated size %d too small", n)
	case n > 4:
		return nil, fmt.Errorf("chol: replicated mode folds one matrix into a core's 4 banks; size %d > 4", n)
	case coreCount <= 0 || coreCount > m.Cfg.NumCores():
		return nil, fmt.Errorf("chol: %d cores requested, cluster has %d", coreCount, m.Cfg.NumCores())
	case rounds <= 0 || perRound <= 0:
		return nil, fmt.Errorf("chol: rounds %d and perRound %d must be positive", rounds, perRound)
	}
	pl := &ReplicatedPlan{N: n, Rounds: rounds, PerRound: perRound, m: m}
	pl.Cores = make([]int, coreCount)
	for i := range pl.Cores {
		pl.Cores[i] = i
	}
	reps := rounds * perRound
	pl.gBase = make([]arch.Addr, coreCount*reps)
	for i := range pl.gBase {
		base, err := m.Mem.AllocSeq(n * n)
		if err != nil {
			return nil, fmt.Errorf("chol: replicated input %d: %w", i, err)
		}
		pl.gBase[i] = base
	}
	// One folded block per tile: each core's 4 banks hold one matrix's
	// rows, one bank row per column per repetition.
	tiles := tilesOf(m.Cfg, pl.Cores)
	pl.blocks = make([]tcdm.TileBlock, m.Cfg.NumTiles())
	for _, tile := range tiles {
		blk, err := m.Mem.AllocTileLocal(tile, n*reps)
		if err != nil {
			return nil, fmt.Errorf("chol: replicated output tile %d: %w", tile, err)
		}
		pl.blocks[tile] = blk
	}
	return pl, nil
}

// rep indexes a (round, perRound) pair.
func (pl *ReplicatedPlan) rep(round, k int) int { return round*pl.PerRound + k }

// lAddr returns the folded address of L[i][c] of one repetition on one
// core: row i in bank i, column c at bank row rep*n+c.
func (pl *ReplicatedPlan) lAddr(core, rep, i, c int) arch.Addr {
	cfg := pl.m.Cfg
	tile := cfg.TileOfCore(core)
	bank := (core%cfg.CoresPerTile)*cfg.BanksPerCore + i
	return pl.blocks[tile].Addr(bank, rep*pl.N+c)
}

// WriteG stores the input matrix of one repetition on one lane.
func (pl *ReplicatedPlan) WriteG(lane, rep int, g []fixed.C15) error {
	if len(g) != pl.N*pl.N {
		return fmt.Errorf("chol: WriteG: %d elements, want %d", len(g), pl.N*pl.N)
	}
	base := pl.gBase[lane*pl.Rounds*pl.PerRound+rep]
	for i, v := range g {
		pl.m.Mem.Write(base+arch.Addr(i), uint32(v))
	}
	return nil
}

// ReadL returns the factor of one repetition on one lane.
func (pl *ReplicatedPlan) ReadL(lane, rep int) []fixed.C15 {
	core := pl.Cores[lane]
	out := make([]fixed.C15, pl.N*pl.N)
	for i := 0; i < pl.N; i++ {
		for k := 0; k <= i; k++ {
			out[i*pl.N+k] = fixed.C15(pl.m.Mem.Read(pl.lAddr(core, rep, i, k)))
		}
	}
	return out
}

// Decompose runs one full serial Crout factorization on a core: the
// primitive shared by the replicated plan, the serial baseline, and the
// chain's per-subcarrier MIMO stage. gAddr and lAddr map matrix indices
// to memory; the operation order matches phy.Cholesky bit for bit.
func Decompose(p *engine.Proc, n int, gAddr, lAddr func(i, c int) arch.Addr) {
	for j := 0; j < n; j++ {
		var sum engine.A
		p.Tick(6) // column prologue: folded row/bank address setup
		for k := 0; k < j; k++ {
			lk := p.Load(lAddr(j, k))
			sum = p.MacAbs2(sum, lk)
			p.Tick(2) // loop control + address step
		}
		g := p.Load(gAddr(j, j))
		pivot := p.AccSub(p.Widen(g), sum)
		d := p.SqrtRe(pivot)
		p.Store(lAddr(j, j), d)
		p.Tick(6)
		for i := j + 1; i < n; i++ {
			var acc engine.A
			p.Tick(6) // row prologue: both rows' bank addresses
			for k := 0; k < j; k++ {
				li, lj := p.Load2(lAddr(i, k), lAddr(j, k))
				acc = p.MacConj(acc, li, lj)
				p.Tick(2)
			}
			gij := p.Load(gAddr(i, j))
			num := p.AccSub(p.Widen(gij), acc)
			res := p.DivByRe(num, d)
			p.Store(lAddr(i, j), res)
			p.Tick(6)
		}
	}
}

// seqAddr builds an index function over a row-major matrix at base.
func seqAddr(base arch.Addr, n int) func(i, c int) arch.Addr {
	return func(i, c int) arch.Addr { return base + arch.Addr(i*n+c) }
}

// JobsList builds the single job: one phase per round, each decomposing
// PerRound matrices per core.
func (pl *ReplicatedPlan) JobsList() []engine.Job {
	phases := make([]engine.Phase, pl.Rounds)
	for round := range phases {
		r := round
		phases[round] = engine.Phase{
			Name:   fmt.Sprintf("round%d", r),
			Kernel: "chol/rep",
			Lines:  10,
			Work: func(p *engine.Proc) {
				core := pl.Cores[p.Lane]
				gOf := func(rep int) func(i, c int) arch.Addr {
					return seqAddr(pl.gBase[p.Lane*pl.Rounds*pl.PerRound+rep], pl.N)
				}
				lOf := func(rep int) func(i, c int) arch.Addr {
					return func(i, c int) arch.Addr { return pl.lAddr(core, rep, i, c) }
				}
				if pl.Pipelined {
					k := 0
					for ; k+1 < pl.PerRound; k += 2 {
						ra, rb := pl.rep(r, k), pl.rep(r, k+1)
						DecomposePipelined2(p, pl.N, gOf(ra), lOf(ra), gOf(rb), lOf(rb))
						p.Tick(2)
					}
					if k < pl.PerRound { // odd tail: plain decomposition
						rep := pl.rep(r, k)
						Decompose(p, pl.N, gOf(rep), lOf(rep))
						p.Tick(2)
					}
					return
				}
				for k := 0; k < pl.PerRound; k++ {
					rep := pl.rep(r, k)
					Decompose(p, pl.N, gOf(rep), lOf(rep))
					p.Tick(2)
				}
			},
		}
	}
	return []engine.Job{{
		Name:   fmt.Sprintf("chol%d-rep", pl.N),
		Cores:  pl.Cores,
		Phases: phases,
	}}
}

// Run executes the replicated decompositions.
func (pl *ReplicatedPlan) Run() error { return pl.m.Run(pl.JobsList()...) }

// SerialPlan decomposes count n-by-n matrices on one core with all data
// in sequential memory: the Fig. 9 baseline.
type SerialPlan struct {
	N     int
	Count int
	Core  int

	m     *engine.Machine
	gBase []arch.Addr
	lBase []arch.Addr
}

// NewSerialPlan allocates count serial decompositions of size n.
func NewSerialPlan(m *engine.Machine, core, n, count int) (*SerialPlan, error) {
	if n < 2 {
		return nil, fmt.Errorf("chol: size %d too small", n)
	}
	if count <= 0 {
		return nil, fmt.Errorf("chol: count %d must be positive", count)
	}
	pl := &SerialPlan{N: n, Count: count, Core: core, m: m}
	pl.gBase = make([]arch.Addr, count)
	pl.lBase = make([]arch.Addr, count)
	for i := range pl.gBase {
		g, err := m.Mem.AllocSeq(n * n)
		if err != nil {
			return nil, fmt.Errorf("chol: serial input %d: %w", i, err)
		}
		l, err := m.Mem.AllocSeq(n * n)
		if err != nil {
			return nil, fmt.Errorf("chol: serial output %d: %w", i, err)
		}
		pl.gBase[i], pl.lBase[i] = g, l
	}
	return pl, nil
}

// WriteG stores one input matrix.
func (pl *SerialPlan) WriteG(rep int, g []fixed.C15) error {
	if len(g) != pl.N*pl.N {
		return fmt.Errorf("chol: WriteG: %d elements, want %d", len(g), pl.N*pl.N)
	}
	for i, v := range g {
		pl.m.Mem.Write(pl.gBase[rep]+arch.Addr(i), uint32(v))
	}
	return nil
}

// ReadL returns one factor.
func (pl *SerialPlan) ReadL(rep int) []fixed.C15 {
	out := make([]fixed.C15, pl.N*pl.N)
	for i := 0; i < pl.N; i++ {
		for k := 0; k <= i; k++ {
			out[i*pl.N+k] = fixed.C15(pl.m.Mem.Read(pl.lBase[rep] + arch.Addr(i*pl.N+k)))
		}
	}
	return out
}

// Job builds the single-core job.
func (pl *SerialPlan) Job() engine.Job {
	return engine.Job{
		Name:  fmt.Sprintf("chol%d-serial", pl.N),
		Cores: []int{pl.Core},
		Phases: []engine.Phase{{
			Name:   "all",
			Kernel: "chol/rep",
			Lines:  10,
			Work: func(p *engine.Proc) {
				for rep := 0; rep < pl.Count; rep++ {
					Decompose(p, pl.N, seqAddr(pl.gBase[rep], pl.N), seqAddr(pl.lBase[rep], pl.N))
					p.Tick(2)
				}
			},
		}},
	}
}

// Run executes the serial decompositions.
func (pl *SerialPlan) Run() error { return pl.m.Run(pl.Job()) }

// DecomposePipelined2 factors two independent matrices in software-
// pipelined fashion: the element work of matrix B issues while matrix
// A's divide/sqrt results are still in flight, hiding the iterative
// unit's latency that otherwise sits on the critical path of every
// column (the optimization behind the paper's 0.71 IPC replicated
// configuration). Results are bit-identical to two sequential
// Decompose calls, since the matrices are independent.
func DecomposePipelined2(p *engine.Proc, n int, gA, lA, gB, lB func(i, c int) arch.Addr) {
	for j := 0; j < n; j++ {
		// Diagonals: issue A's square root, overlap with B's MAC loop.
		p.Tick(6)
		var sumA engine.A
		for k := 0; k < j; k++ {
			sumA = p.MacAbs2(sumA, p.Load(lA(j, k)))
			p.Tick(2)
		}
		pivotA := p.AccSub(p.Widen(p.Load(gA(j, j))), sumA)
		dA := p.SqrtRe(pivotA)
		p.Tick(6)
		var sumB engine.A
		for k := 0; k < j; k++ {
			sumB = p.MacAbs2(sumB, p.Load(lB(j, k)))
			p.Tick(2)
		}
		pivotB := p.AccSub(p.Widen(p.Load(gB(j, j))), sumB)
		dB := p.SqrtRe(pivotB)
		p.Store(lA(j, j), dA) // A's result has landed during B's MACs
		p.Store(lB(j, j), dB)
		// Sub-diagonal rows, alternating matrices per element.
		for i := j + 1; i < n; i++ {
			p.Tick(6)
			var accA engine.A
			for k := 0; k < j; k++ {
				liA, ljA := p.Load2(lA(i, k), lA(j, k))
				accA = p.MacConj(accA, liA, ljA)
				p.Tick(2)
			}
			numA := p.AccSub(p.Widen(p.Load(gA(i, j))), accA)
			resA := p.DivByRe(numA, dA)
			p.Tick(6)
			var accB engine.A
			for k := 0; k < j; k++ {
				liB, ljB := p.Load2(lB(i, k), lB(j, k))
				accB = p.MacConj(accB, liB, ljB)
				p.Tick(2)
			}
			numB := p.AccSub(p.Widen(p.Load(gB(i, j))), accB)
			resB := p.DivByRe(numB, dB)
			p.Store(lA(i, j), resA) // hidden behind B's element
			p.Store(lB(i, j), resB)
			p.Tick(6)
		}
	}
}
