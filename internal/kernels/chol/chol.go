// Package chol implements the Cholesky decomposition kernels of Section
// V-C of the paper: the Cholesky-Crout algorithm computed column by
// column, with
//
//   - a fine-grained parallel mode (PairPlan) where each core owns 4 rows
//     of the output matrix, rows are folded so each lives in a single
//     bank, and two mirrored instances run together so the staircase
//     workload balances across cores;
//   - a replicated mode (ReplicatedPlan) where every core decomposes
//     whole small matrices (the 4x4 case of the MIMO stage), with a
//     configurable number of decompositions between barriers;
//   - a serial baseline (SerialPlan) for the Fig. 9 speedup reference.
//
// The arithmetic follows phy.Cholesky operation for operation, so all
// modes produce bit-identical factors to the golden model.
package chol

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/fixed"
	"repro/internal/tcdm"
)

// PairPlan decomposes 2*Pairs Hermitian positive-definite N-by-N matrices:
// each pair of instances shares N/4 cores with mirrored row ownership.
type PairPlan struct {
	N     int // matrix size (multiple of 4)
	Pairs int
	Lanes int // cores per pair (N/4)

	m      *engine.Machine
	gBase  [][2]arch.Addr     // [pair][instance] input matrices, sequential
	blocks [][]tcdm.TileBlock // [pair][tileInPair] folded output storage
	cores  [][]int            // [pair] core ids
}

// NewPairPlan allocates storage for pairs mirrored fine-grained
// decompositions of size n.
func NewPairPlan(m *engine.Machine, n, pairs int) (*PairPlan, error) {
	if n < 4 || n%4 != 0 {
		return nil, fmt.Errorf("chol: size %d must be a positive multiple of 4", n)
	}
	if pairs <= 0 {
		return nil, fmt.Errorf("chol: pairs %d must be positive", pairs)
	}
	lanes := n / 4
	if pairs*lanes > m.Cfg.NumCores() {
		return nil, fmt.Errorf("chol: %d pairs of size %d need %d cores, cluster has %d",
			pairs, n, pairs*lanes, m.Cfg.NumCores())
	}
	pl := &PairPlan{N: n, Pairs: pairs, Lanes: lanes, m: m}
	pl.gBase = make([][2]arch.Addr, pairs)
	pl.blocks = make([][]tcdm.TileBlock, pairs)
	pl.cores = make([][]int, pairs)
	for pr := 0; pr < pairs; pr++ {
		for q := 0; q < 2; q++ {
			base, err := m.Mem.AllocSeq(n * n)
			if err != nil {
				return nil, fmt.Errorf("chol: input %d/%d: %w", pr, q, err)
			}
			pl.gBase[pr][q] = base
		}
		cores := make([]int, lanes)
		for l := range cores {
			cores[l] = pr*lanes + l
		}
		pl.cores[pr] = cores
		tiles := tilesOf(m.Cfg, cores)
		blocks := make([]tcdm.TileBlock, len(tiles))
		for ti, tile := range tiles {
			// Each lane's 4 banks hold its 4 rows; a row needs n words
			// (one per column) per instance.
			blk, err := m.Mem.AllocTileLocal(tile, 2*n)
			if err != nil {
				return nil, fmt.Errorf("chol: output block pair %d tile %d: %w", pr, tile, err)
			}
			blocks[ti] = blk
		}
		pl.blocks[pr] = blocks
	}
	return pl, nil
}

func tilesOf(cfg *arch.Config, cores []int) []int {
	seen := make(map[int]bool)
	var tiles []int
	for _, c := range cores {
		t := cfg.TileOfCore(c)
		if !seen[t] {
			seen[t] = true
			tiles = append(tiles, t)
		}
	}
	return tiles
}

// ownerLane returns the lane owning row i of instance q (instance 1 is
// mirrored so the bottom rows belong to the first lanes).
func (pl *PairPlan) ownerLane(q, i int) int {
	if q == 0 {
		return i / 4
	}
	return pl.Lanes - 1 - i/4
}

// lAddr returns the folded address of L[i][k] of instance q in a pair:
// the whole row i lives in one bank of its owner's tile.
func (pl *PairPlan) lAddr(pair, q, i, k int) arch.Addr {
	cfg := pl.m.Cfg
	lane := pl.ownerLane(q, i)
	core := pl.cores[pair][lane]
	tile := cfg.TileOfCore(core)
	ti := tile - cfg.TileOfCore(pl.cores[pair][0])
	bank := (core%cfg.CoresPerTile)*cfg.BanksPerCore + i%4
	row := q*pl.N + k
	return pl.blocks[pair][ti].Addr(bank, row)
}

// WriteG stores one input matrix (host write, untimed).
func (pl *PairPlan) WriteG(pair, q int, g []fixed.C15) error {
	if len(g) != pl.N*pl.N {
		return fmt.Errorf("chol: WriteG: %d elements, want %d", len(g), pl.N*pl.N)
	}
	for i, v := range g {
		pl.m.Mem.Write(pl.gBase[pair][q]+arch.Addr(i), uint32(v))
	}
	return nil
}

// ReadL returns the factor of one instance with zeros above the diagonal
// (host read, untimed).
func (pl *PairPlan) ReadL(pair, q int) []fixed.C15 {
	out := make([]fixed.C15, pl.N*pl.N)
	for i := 0; i < pl.N; i++ {
		for k := 0; k <= i; k++ {
			out[i*pl.N+k] = fixed.C15(pl.m.Mem.Read(pl.lAddr(pair, q, i, k)))
		}
	}
	return out
}

// subDiag computes L[i][j] for one row in phase j+1.
func (pl *PairPlan) subDiag(p *engine.Proc, pair, q, i, j int, den engine.W) {
	var sum engine.A
	// Stagger the dot-product start per lane so the lanes scanning row j
	// (all stored in one bank) do not walk it in lockstep. The sum is
	// exact in Q2.30, so reordering cannot change the result.
	off := 0
	if j > 0 {
		off = (4 * p.Lane) % j
	}
	p.Tick(6) // row prologue: folded bank addresses for both rows
	for kk := 0; kk < j; kk++ {
		k := kk + off
		if k >= j {
			k -= j
		}
		li, lj := p.Load2(pl.lAddr(pair, q, i, k), pl.lAddr(pair, q, j, k))
		sum = p.MacConj(sum, li, lj)
		p.Tick(2) // loop control + staggered index step
	}
	g := p.Load(pl.gBase[pair][q] + arch.Addr(i*pl.N+j))
	num := p.AccSub(p.Widen(g), sum)
	res := p.DivByRe(num, den)
	p.Store(pl.lAddr(pair, q, i, j), res)
	p.Tick(6)
}

// diag computes L[t][t] in the phase after column t-1 completes.
func (pl *PairPlan) diag(p *engine.Proc, pair, q, t int) {
	var sum engine.A
	p.Tick(6) // diagonal prologue
	for k := 0; k < t; k++ {
		lk := p.Load(pl.lAddr(pair, q, t, k))
		sum = p.MacAbs2(sum, lk)
		p.Tick(2)
	}
	g := p.Load(pl.gBase[pair][q] + arch.Addr(t*pl.N+t))
	pivot := p.AccSub(p.Widen(g), sum)
	d := p.SqrtRe(pivot)
	p.Store(pl.lAddr(pair, q, t, t), d)
	p.Tick(6)
}

// phaseWork builds the phase-t body: sub-diagonal of column t-1 plus the
// diagonal of column t, for both mirrored instances.
func (pl *PairPlan) phaseWork(pair, t int) func(p *engine.Proc) {
	return func(p *engine.Proc) {
		for q := 0; q < 2; q++ {
			if j := t - 1; j >= 0 {
				// Rows this lane owns with i > j.
				var rows []int
				for r := 0; r < 4; r++ {
					var i int
					if q == 0 {
						i = p.Lane*4 + r
					} else {
						i = (pl.Lanes-1-p.Lane)*4 + r
					}
					if i > j {
						rows = append(rows, i)
					}
				}
				if len(rows) > 0 {
					den := p.Load(pl.lAddr(pair, q, j, j))
					for _, i := range rows {
						pl.subDiag(p, pair, q, i, j, den)
					}
				}
			}
			if t < pl.N && pl.ownerLane(q, t) == p.Lane {
				pl.diag(p, pair, q, t)
			}
		}
	}
}

// JobsList builds one job per pair, with one phase per column.
func (pl *PairPlan) JobsList() []engine.Job {
	jobs := make([]engine.Job, pl.Pairs)
	for pr := range jobs {
		phases := make([]engine.Phase, pl.N)
		for t := range phases {
			phases[t] = engine.Phase{
				Name:   fmt.Sprintf("col%d", t),
				Kernel: "chol/col",
				Lines:  10,
				Work:   pl.phaseWork(pr, t),
			}
		}
		jobs[pr] = engine.Job{
			Name:   fmt.Sprintf("chol%d[%d]", pl.N, pr),
			Cores:  pl.cores[pr],
			Phases: phases,
		}
	}
	return jobs
}

// Run executes all pairs.
func (pl *PairPlan) Run() error { return pl.m.Run(pl.JobsList()...) }
