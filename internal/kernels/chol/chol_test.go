package chol

import (
	"math/rand/v2"
	"testing"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/fixed"
	"repro/internal/phy"
)

// testGramian builds a well-conditioned packed Q15 Gramian of size n.
func testGramian(rng *rand.Rand, n int) []fixed.C15 {
	nb := 2 * n
	h := make([]fixed.C15, nb*n)
	for i := range h {
		h[i] = fixed.FromComplex(complex(
			(rng.Float64()*2-1)*0.6,
			(rng.Float64()*2-1)*0.6,
		))
	}
	shift := uint(1)
	for 1<<shift < nb {
		shift++
	}
	return phy.Gramian(h, nb, n, shift+1, fixed.FloatToQ15(0.05))
}

func bitEqualLower(t *testing.T, got, want []fixed.C15, n int, label string) {
	t.Helper()
	for i := 0; i < n; i++ {
		for k := 0; k <= i; k++ {
			if got[i*n+k] != want[i*n+k] {
				t.Fatalf("%s: L[%d][%d] = %08x, want %08x", label, i, k,
					uint32(got[i*n+k]), uint32(want[i*n+k]))
			}
		}
	}
}

func TestPairMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, tc := range []struct {
		cfg   *arch.Config
		n     int
		pairs int
	}{
		{arch.MemPool(), 8, 2},
		{arch.MemPool(), 16, 4},
		{arch.MemPool(), 32, 4},
		{arch.TeraPool(), 32, 8},
	} {
		m := engine.NewMachine(tc.cfg)
		m.DebugRaces = true
		pl, err := NewPairPlan(m, tc.n, tc.pairs)
		if err != nil {
			t.Fatalf("%s n=%d: %v", tc.cfg.Name, tc.n, err)
		}
		inputs := make([][2][]fixed.C15, tc.pairs)
		for pr := 0; pr < tc.pairs; pr++ {
			for q := 0; q < 2; q++ {
				g := testGramian(rng, tc.n)
				inputs[pr][q] = g
				if err := pl.WriteG(pr, q, g); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := pl.Run(); err != nil {
			t.Fatal(err)
		}
		for pr := 0; pr < tc.pairs; pr++ {
			for q := 0; q < 2; q++ {
				want := phy.Cholesky(inputs[pr][q], tc.n)
				got := pl.ReadL(pr, q)
				bitEqualLower(t, got, want, tc.n, tc.cfg.Name)
			}
		}
	}
}

func TestReplicatedMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	m := engine.NewMachine(arch.MemPool())
	m.DebugRaces = true
	coreCount, rounds, per := 16, 2, 3
	pl, err := NewReplicatedPlan(m, 4, coreCount, rounds, per)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]fixed.C15, coreCount*rounds*per)
	for lane := 0; lane < coreCount; lane++ {
		for rep := 0; rep < rounds*per; rep++ {
			g := testGramian(rng, 4)
			inputs[lane*rounds*per+rep] = g
			if err := pl.WriteG(lane, rep, g); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < coreCount; lane++ {
		for rep := 0; rep < rounds*per; rep++ {
			want := phy.Cholesky(inputs[lane*rounds*per+rep], 4)
			bitEqualLower(t, pl.ReadL(lane, rep), want, 4, "replicated")
		}
	}
}

func TestSerialMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	m := engine.NewMachine(arch.MemPool())
	pl, err := NewSerialPlan(m, 0, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]fixed.C15, 3)
	for rep := range inputs {
		inputs[rep] = testGramian(rng, 16)
		if err := pl.WriteG(rep, inputs[rep]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	for rep := range inputs {
		bitEqualLower(t, pl.ReadL(rep), phy.Cholesky(inputs[rep], 16), 16, "serial")
	}
}

// TestRowsFoldedToOneBank checks the placement claim: every element of an
// output row lives in the same bank.
func TestRowsFoldedToOneBank(t *testing.T) {
	m := engine.NewMachine(arch.MemPool())
	pl, err := NewPairPlan(m, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Cfg
	for q := 0; q < 2; q++ {
		for i := 0; i < 32; i++ {
			b0 := cfg.BankOf(pl.lAddr(0, q, i, 0))
			for k := 1; k <= i; k++ {
				if b := cfg.BankOf(pl.lAddr(0, q, i, k)); b != b0 {
					t.Fatalf("instance %d row %d spans banks %d and %d", q, i, b0, b)
				}
			}
			// And the row is local to its owner.
			core := pl.cores[0][pl.ownerLane(q, i)]
			if lv := cfg.LevelFor(core, pl.lAddr(0, q, i, 0)); lv != arch.LevelLocal {
				t.Fatalf("instance %d row %d not local to owner (level %s)", q, i, lv)
			}
		}
	}
}

// TestMirroringBalancesLoad compares the WFI skew of a mirrored pair with
// a hypothetical single-instance run: with mirroring, per-core busy time
// must be much more even.
func TestMirroringBalancesLoad(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	m := engine.NewMachine(arch.MemPool())
	pl, err := NewPairPlan(m, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 2; q++ {
		if err := pl.WriteG(0, q, testGramian(rng, 32)); err != nil {
			t.Fatal(err)
		}
	}
	mark := m.Mark()
	if err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	rep := m.ReportSince(mark, "chol-pair", pl.cores[0])
	// The mirrored staircase must keep WFI below a third of the time.
	wfi := rep.Fraction(func(s engine.Stats) int64 { return s.WfiStalls })
	if wfi > 0.45 {
		t.Errorf("WFI fraction %.2f too high for mirrored pair", wfi)
	}
	// Per-core instruction counts must be within 2x of each other
	// (without mirroring the top core does nearly 2x the bottom's work
	// in one instance and 0 in the other).
	var minI, maxI int64 = 1 << 62, 0
	for _, c := range pl.cores[0] {
		instr := m.CoreStats(c).Instrs
		if instr < minI {
			minI = instr
		}
		if instr > maxI {
			maxI = instr
		}
	}
	if maxI > 2*minI {
		t.Errorf("instruction imbalance %d..%d exceeds 2x", minI, maxI)
	}
}

// TestFewerBarriersRaiseIPC: one barrier per 16 decompositions must beat
// one barrier per decomposition round.
func TestFewerBarriersRaiseIPC(t *testing.T) {
	run := func(rounds, per int) float64 {
		rng := rand.New(rand.NewPCG(9, 10))
		m := engine.NewMachine(arch.MemPool())
		pl, err := NewReplicatedPlan(m, 4, m.Cfg.NumCores(), rounds, per)
		if err != nil {
			t.Fatal(err)
		}
		for lane := 0; lane < len(pl.Cores); lane++ {
			for rep := 0; rep < rounds*per; rep++ {
				if err := pl.WriteG(lane, rep, testGramian(rng, 4)); err != nil {
					t.Fatal(err)
				}
			}
		}
		mark := m.Mark()
		if err := pl.Run(); err != nil {
			t.Fatal(err)
		}
		return m.ReportSince(mark, "chol-rep", pl.Cores).IPC()
	}
	perBarrier := run(16, 1)
	batched := run(1, 16)
	if batched <= perBarrier {
		t.Errorf("batched IPC %.3f not above per-round-barrier IPC %.3f", batched, perBarrier)
	}
}

// TestExtUnitStallsPresent: the staircase structure keeps the divide/sqrt
// unit on the critical path, so external-unit stalls must be visible,
// matching Fig. 8c.
func TestExtUnitStallsPresent(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	m := engine.NewMachine(arch.MemPool())
	pl, err := NewSerialPlan(m, 0, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 16; rep++ {
		if err := pl.WriteG(rep, testGramian(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	mark := m.Mark()
	if err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	rep := m.ReportSince(mark, "chol-serial", []int{0})
	ext := rep.Fraction(func(s engine.Stats) int64 { return s.ExtStalls })
	raw := rep.Fraction(func(s engine.Stats) int64 { return s.RawStalls })
	if ext+raw < 0.15 {
		t.Errorf("ext+raw stall fraction %.2f too low for a 4x4 staircase", ext+raw)
	}
}

func TestPlanValidation(t *testing.T) {
	m := engine.NewMachine(arch.MemPool())
	if _, err := NewPairPlan(m, 6, 1); err == nil {
		t.Error("size not multiple of 4 accepted")
	}
	if _, err := NewPairPlan(m, 32, 0); err == nil {
		t.Error("zero pairs accepted")
	}
	if _, err := NewPairPlan(m, 4096, 1); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := NewReplicatedPlan(m, 8, 4, 1, 1); err == nil {
		t.Error("replicated size > 4 accepted")
	}
	if _, err := NewReplicatedPlan(m, 4, 0, 1, 1); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewReplicatedPlan(m, 4, 4, 0, 1); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := NewSerialPlan(m, 0, 1, 1); err == nil {
		t.Error("size 1 accepted")
	}
	if _, err := NewSerialPlan(m, 0, 4, 0); err == nil {
		t.Error("zero count accepted")
	}
}

// TestSpeedup: replicated mode on the full cluster versus the serial
// baseline doing the same number of decompositions.
func TestSpeedup(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	mPar := engine.NewMachine(arch.MemPool())
	cores := mPar.Cfg.NumCores()
	pl, err := NewReplicatedPlan(mPar, 4, cores, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	gs := make([][]fixed.C15, 4)
	for i := range gs {
		gs[i] = testGramian(rng, 4)
	}
	for lane := 0; lane < cores; lane++ {
		for rep := 0; rep < 4; rep++ {
			if err := pl.WriteG(lane, rep, gs[rep]); err != nil {
				t.Fatal(err)
			}
		}
	}
	mark := mPar.Mark()
	if err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	par := mPar.ReportSince(mark, "par", pl.Cores)

	mSer := engine.NewMachine(arch.MemPool())
	// Serial equivalent: 4 decompositions (one core's share) repeated for
	// all cores is too slow to simulate at full scale in a unit test;
	// instead simulate one core's share and scale the comparison.
	sp, err := NewSerialPlan(mSer, 0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 4; rep++ {
		if err := sp.WriteG(rep, gs[rep]); err != nil {
			t.Fatal(err)
		}
	}
	mark = mSer.Mark()
	if err := sp.Run(); err != nil {
		t.Fatal(err)
	}
	ser := mSer.ReportSince(mark, "ser", []int{0})

	// The parallel run does cores x the serial work; speedup vs the
	// scaled serial time must be a large fraction of the core count.
	scaledSerial := engine.Report{Wall: ser.Wall * int64(cores), Cores: 1}
	sp2 := engine.Speedup(scaledSerial, par)
	if sp2 < float64(cores)/3 || sp2 > float64(cores) {
		t.Errorf("speedup %.0f outside plausible range for %d cores", sp2, cores)
	}
}

// TestPipelinedMatchesGolden: the software-pipelined pair mode must stay
// bit-identical to the golden model (the pipelining only reorders work
// between independent matrices).
func TestPipelinedMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	m := engine.NewMachine(arch.MemPool())
	m.DebugRaces = true
	coreCount, per := 8, 5 // odd PerRound exercises the tail path
	pl, err := NewReplicatedPlan(m, 4, coreCount, 1, per)
	if err != nil {
		t.Fatal(err)
	}
	pl.Pipelined = true
	inputs := make([][]fixed.C15, coreCount*per)
	for lane := 0; lane < coreCount; lane++ {
		for rep := 0; rep < per; rep++ {
			g := testGramian(rng, 4)
			inputs[lane*per+rep] = g
			if err := pl.WriteG(lane, rep, g); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < coreCount; lane++ {
		for rep := 0; rep < per; rep++ {
			want := phy.Cholesky(inputs[lane*per+rep], 4)
			bitEqualLower(t, pl.ReadL(lane, rep), want, 4, "pipelined")
		}
	}
}

// TestPipelinedRaisesIPC: hiding the divide/sqrt latency behind the
// partner matrix's MAC stream must beat the plain element-by-element
// schedule.
func TestPipelinedRaisesIPC(t *testing.T) {
	run := func(pipelined bool) float64 {
		rng := rand.New(rand.NewPCG(23, 24))
		m := engine.NewMachine(arch.MemPool())
		pl, err := NewReplicatedPlan(m, 4, m.Cfg.NumCores(), 1, 16)
		if err != nil {
			t.Fatal(err)
		}
		pl.Pipelined = pipelined
		for lane := 0; lane < len(pl.Cores); lane++ {
			for rep := 0; rep < 16; rep++ {
				if err := pl.WriteG(lane, rep, testGramian(rng, 4)); err != nil {
					t.Fatal(err)
				}
			}
		}
		mark := m.Mark()
		if err := pl.Run(); err != nil {
			t.Fatal(err)
		}
		return m.ReportSince(mark, "chol", pl.Cores).IPC()
	}
	plain := run(false)
	piped := run(true)
	if piped <= plain {
		t.Errorf("pipelined IPC %.3f not above plain %.3f", piped, plain)
	}
}
